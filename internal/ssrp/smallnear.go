package ssrp

import (
	"msrp/internal/dijkstra"
	"msrp/internal/engine"
	"msrp/internal/rp"
)

// ArcBuilderKey is the scratch attachment key under which every
// auxiliary-graph stage keeps its per-worker dijkstra arc builder.
// Sharing one key is deliberate: stages run sequentially within an
// item, and each finalizes (copies out of) the builder before the next
// resets it, so one builder's capacity serves them all.
const ArcBuilderKey = "dijkstra.builder"

// AttachedBuilder returns the per-worker arc builder of sc, reset for a
// graph on n nodes. A nil scratch yields a fresh builder.
func AttachedBuilder(sc *engine.Scratch, n, arcHint int) *dijkstra.Builder {
	if sc == nil {
		return dijkstra.NewBuilder(n, arcHint)
	}
	b := sc.Attach(ArcBuilderKey, func() any { return dijkstra.NewBuilder(0, 0) }).(*dijkstra.Builder)
	b.Reset(n)
	return b
}

// SmallNear is the §7.1 auxiliary graph G_s and its Dijkstra solution.
// It answers, for every target t and every near edge e on the canonical
// s→t path, the length of the best "small" replacement path
// (|st ⋄ e| whenever |st ⋄ e| ≤ |se| + 2X; an upper bound otherwise).
//
// # Node space
//
//	[v]    — one node per graph vertex, id = v.
//	[t,e]  — one node per (target, near path edge); ids are packed
//	         after the vertex nodes, contiguous per target.
//
// # Arcs (each is a real e-avoiding walk extension; see Lemma 10)
//
//	[s] → [v]     weight |sv|   — the canonical prefix, compressed.
//	[v] → [t,e]   weight 1      — if (v,t) ∈ E, (v,t) ≠ e, e ∉ sv path.
//	[v,e] → [t,e] weight 1      — if (v,t) ∈ E, (v,t) ≠ e, and e is a
//	                              near edge on the s→v path.
//
// The (v,t) ≠ e exclusions are our fix to the paper's literal text
// (DESIGN.md §3 item 3): when e is the last edge of the st path, v's
// edge to t may be e itself.
//
// A key index identity keeps the bookkeeping flat: if a tree edge e of
// T_s lies on the canonical paths of both v and t, it has the same
// 0-based index i on both (canonical tree paths share prefixes), so
// [v,e] is simply v's block at offset i.
type SmallNear struct {
	ps *PerSource

	n        int     // vertex-node count
	teBase   []int32 // per vertex: first node id of its [t,e] block, -1 if none
	startIdx []int32 // per vertex: first near path-edge index (L − nearCount)
	teVertex []int32 // per [t,e] node (offset −n): its target vertex

	res *dijkstra.Result

	// released marks that ReleasePathState dropped the path-expansion
	// state; PathVertices calls are a bug after that point.
	released bool

	// NumNodes and NumArcs record the built auxiliary graph size for
	// the E9 experiment.
	NumNodes int
	NumArcs  int
}

// buildSmallNear constructs the §7.1 auxiliary graph for this source
// and solves it with one Dijkstra run. sc (optional) backs the
// transient arc-builder arrays.
func buildSmallNear(ps *PerSource, sc *engine.Scratch) *SmallNear {
	g := ps.Sh.G
	ts := ps.Ts
	n := g.NumVertices()
	sn := &SmallNear{
		ps:       ps,
		n:        n,
		teBase:   make([]int32, n),
		startIdx: make([]int32, n),
	}

	// Lay out the [t,e] node blocks.
	next := int32(n)
	for t := 0; t < n; t++ {
		sn.teBase[t] = -1
		sn.startIdx[t] = 0
		l := ts.Dist[t]
		if l <= 0 {
			continue
		}
		count := int32(ps.Sh.nearEdgeCap)
		if l < count {
			count = l
		}
		sn.teBase[t] = next
		sn.startIdx[t] = l - count
		next += count
	}
	total := int(next)
	sn.teVertex = make([]int32, total-n)
	for t := 0; t < n; t++ {
		if base := sn.teBase[t]; base >= 0 {
			l := ts.Dist[t]
			for i := sn.startIdx[t]; i < l; i++ {
				sn.teVertex[base+int32(i-sn.startIdx[t])-int32(n)] = int32(t)
			}
		}
	}

	b := AttachedBuilder(sc, total, total)
	// [s] → [v] arcs, the compressed canonical prefixes.
	for v := int32(0); v < int32(n); v++ {
		if v != ts.Root && ts.Reachable(v) {
			b.AddArc(ts.Root, v, ts.Dist[v])
		}
	}
	// Per-target near-edge arcs. Walk each target's path from t upward;
	// position i carries edge e_i whose child endpoint is x_{i+1}.
	for t := int32(0); t < int32(n); t++ {
		base := sn.teBase[t]
		if base < 0 {
			continue
		}
		l := ts.Dist[t]
		start := sn.startIdx[t]
		nbrs, ids := g.Neighbors(int(t))
		x := t // x = x_{i+1} while scanning position i
		for i := l - 1; i >= start; i-- {
			e := ts.ParentEdge[x]
			teNode := base + (i - start)
			for j, v := range nbrs {
				ge := ids[j]
				if ge == e || !ts.Reachable(v) {
					continue
				}
				if !ps.AncS.EdgeOnRootPath(g, e, v) {
					b.AddArc(v, teNode, 1)
				} else if i >= sn.startIdx[v] {
					// e is a near edge on the s→v path: its index there
					// is also i (shared-prefix identity), so [v,e] is
					// v's block at offset i.
					b.AddArc(sn.teBase[v]+(i-sn.startIdx[v]), teNode, 1)
				}
			}
			x = ts.Parent[x]
		}
	}
	sn.NumNodes = total
	sn.NumArcs = b.NumArcs()
	// The CSR is discarded after the one Run, so it can live in the
	// worker scratch; the Result is retained (Value reads Dist for the
	// rest of the solve) and stays on the heap.
	sn.res = b.FinalizeScratch(sc).Run(ts.Root)
	return sn
}

// PathStateBytes returns the byte footprint of the state needed only
// for path expansion (the Dijkstra parent chains and the [t,e]-node
// target map) — exactly what ReleasePathState frees. The Value lookups
// (Dist and the block layout) are not included: they stay live through
// the assembly stages.
func (sn *SmallNear) PathStateBytes() int64 {
	return 4*int64(len(sn.res.Parent)) + 4*int64(len(sn.teVertex))
}

// LookupStateBytes returns the byte footprint of the Value-lookup
// state (the Dijkstra distances and the block layout). During a solve
// it is transient either way; a *tracked* result pins it for the
// result's lifetime (snapshot expansion and the provenance explain
// both read it), so the provenance accounting charges it to the plane.
func (sn *SmallNear) LookupStateBytes() int64 {
	return 8*int64(len(sn.res.Dist)) + 4*int64(len(sn.teBase)+len(sn.startIdx))
}

// ReleasePathState drops the path-expansion state and returns the
// bytes freed. The MSRP pipeline calls it as soon as a source's §8.2.1
// seed shard has been enumerated — the only consumer of PathVertices —
// so the Θ(aux)-per-source parent chains live for P in-flight sources
// instead of all σ. Value (and NearStart) keep working; PathVertices
// calls afterwards are a programming error and panic. Under TrackPaths
// the compact witness subset survives in the ProvSnapshot taken just
// before the release (SnapshotProvenance adopts teVertex and copies
// the lattice parents), which is what ReconstructPath runs off.
func (sn *SmallNear) ReleasePathState() int64 {
	freed := sn.PathStateBytes()
	sn.res.Parent = nil
	sn.teVertex = nil
	sn.released = true
	return freed
}

// NearStart returns the first near path-edge index for target t (its
// near edges are indices NearStart(t) … Dist[t]−1), or Dist[t] when t
// has no near block.
func (sn *SmallNear) NearStart(t int32) int32 {
	if sn.teBase[t] < 0 {
		return sn.ps.Ts.Dist[t]
	}
	return sn.startIdx[t]
}

// Value returns the computed small-replacement-path length for target t
// and path-edge index i, or rp.Inf when i is not a near index or the
// node is unreachable.
func (sn *SmallNear) Value(t int32, i int) int32 {
	base := sn.teBase[t]
	if base < 0 || int32(i) < sn.startIdx[t] || int32(i) >= sn.ps.Ts.Dist[t] {
		return rp.Inf
	}
	d := sn.res.Dist[base+(int32(i)-sn.startIdx[t])]
	if d >= int64(rp.Inf) {
		return rp.Inf
	}
	return int32(d)
}

// PathVertices expands the winning small replacement path for (t, i)
// into its graph-vertex sequence (source first, t last), or nil when no
// small path was found. The §8.2.1 machinery enumerates these paths to
// locate centers on them.
func (sn *SmallNear) PathVertices(t int32, i int) []int32 {
	return sn.PathVerticesInto(nil, t, i)
}

// PathVerticesInto is PathVertices writing into dst's backing array
// when it has the capacity (allocating only when it does not). The
// §8.2.1 seed-table build expands Θ(σn) of these paths; routing them
// through one per-worker scratch buffer removes its dominant per-path
// allocation.
func (sn *SmallNear) PathVerticesInto(dst []int32, t int32, i int) []int32 {
	if sn.released {
		panic("ssrp: SmallNear path state was released; PathVertices must run before ReleasePathState")
	}
	base := sn.teBase[t]
	if base < 0 || int32(i) < sn.startIdx[t] || int32(i) >= sn.ps.Ts.Dist[t] {
		return nil
	}
	node := base + (int32(i) - sn.startIdx[t])
	if sn.res.Dist[node] >= int64(rp.Inf) {
		return nil
	}
	// The predecessor chain is a run of [t',e] nodes ending at one [v]
	// node whose canonical prefix completes the walk. First pass: count
	// the tail and find the vertex node; second pass: fill in place.
	tailLen := 0
	v := node
	for v >= int32(sn.n) {
		tailLen++
		v = sn.res.Parent[v]
	}
	prefixLen := int(sn.ps.Ts.Dist[v]) + 1
	total := prefixLen + tailLen
	if cap(dst) < total {
		dst = make([]int32, total)
	} else {
		dst = dst[:total]
	}
	for j, x := prefixLen-1, v; j >= 0; j-- {
		dst[j] = x
		x = sn.ps.Ts.Parent[x]
	}
	for j, x := total-1, node; x >= int32(sn.n); j-- {
		dst[j] = sn.teVertex[x-int32(sn.n)]
		x = sn.res.Parent[x]
	}
	return dst
}
