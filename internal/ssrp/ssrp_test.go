package ssrp

import (
	"errors"
	"testing"

	"msrp/internal/graph"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// testParams returns parameters with boosted sampling so the w.h.p.
// lemmas hold essentially surely at test sizes. SuffixScale is shrunk
// so small graphs still exercise the far-edge and near-large machinery
// instead of degenerating into the all-near regime (Boost·Scale = 3,
// comfortably above the ≥1 the analysis needs).
func testParams(seed uint64) Params {
	p := DefaultParams()
	p.Seed = seed
	p.SampleBoost = 12
	p.SuffixScale = 0.25
	return p
}

func requireExact(t *testing.T, g *graph.Graph, s int32, p Params) {
	t.Helper()
	got, _, err := Solve(g, s, p)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.SSRP(g, s)
	if d := rp.Diff(want, got); d != "" {
		t.Fatalf("s=%d: %s", s, d)
	}
}

func TestCycleAllSources(t *testing.T) {
	// Cycles are the high-diameter extreme: every band of the far-edge
	// machinery activates.
	g := graph.Cycle(60)
	for s := int32(0); s < 60; s += 7 {
		requireExact(t, g, s, testParams(uint64(s)+1))
	}
}

func TestPathGraphAllBridges(t *testing.T) {
	g := graph.Path(40)
	got, _, err := Solve(g, 0, testParams(1))
	if err != nil {
		t.Fatal(err)
	}
	for tt := int32(1); tt < 40; tt++ {
		for i, v := range got.Len[tt] {
			if v != rp.Inf {
				t.Fatalf("t=%d i=%d: got %d, want Inf (all path edges are bridges)", tt, i, v)
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := graph.Grid(6, 7)
	requireExact(t, g, 0, testParams(2))
	requireExact(t, g, 41, testParams(3))
	requireExact(t, g, 17, testParams(4))
}

func TestLongGrid(t *testing.T) {
	// 2×40 grid: diameter 40, long paths, every replacement detour is
	// forced through the second row.
	g := graph.Grid(2, 40)
	requireExact(t, g, 0, testParams(5))
	requireExact(t, g, 39, testParams(6))
}

func TestRandomConnectedSweep(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(50)
		m := n + rng.Intn(3*n)
		g := graph.RandomConnected(rng, n, m)
		s := int32(rng.Intn(n))
		requireExact(t, g, s, testParams(uint64(trial)+10))
	}
}

func TestCycleWithChords(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 6; trial++ {
		g := graph.CycleWithChords(rng, 50+rng.Intn(40), 3+rng.Intn(6))
		s := int32(rng.Intn(g.NumVertices()))
		requireExact(t, g, s, testParams(uint64(trial)+20))
	}
}

func TestBarbell(t *testing.T) {
	g := graph.Barbell(5, 4)
	requireExact(t, g, 0, testParams(8))
	requireExact(t, g, int32(g.NumVertices()-1), testParams(9))
}

func TestCaterpillarTree(t *testing.T) {
	// A tree: every answer is Inf.
	g := graph.Caterpillar(8, 3)
	got, _, err := Solve(g, 0, testParams(10))
	if err != nil {
		t.Fatal(err)
	}
	for tt := range got.Len {
		for i, v := range got.Len[tt] {
			if v != rp.Inf {
				t.Fatalf("tree should have no replacement paths; t=%d i=%d = %d", tt, i, v)
			}
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	g := graph.Complete(12)
	requireExact(t, g, 3, testParams(11))
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(10)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {5, 6}, {6, 7}, {7, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	got, _, err := Solve(g, 0, testParams(12))
	if err != nil {
		t.Fatal(err)
	}
	want := naive.SSRP(g, 0)
	if d := rp.Diff(want, got); d != "" {
		t.Fatal(d)
	}
	// Rows for the other component must be empty.
	for _, tt := range []int32{5, 6, 7, 4, 8, 9} {
		if len(got.Len[tt]) != 0 {
			t.Fatalf("unreachable target %d has %d entries", tt, len(got.Len[tt]))
		}
	}
}

func TestExhaustiveNearModeIsExactWithoutBoost(t *testing.T) {
	// ExhaustiveNear needs no sampling lemma: paper-default constants,
	// arbitrary seed, still exact.
	rng := xrand.New(31)
	p := DefaultParams()
	p.ExhaustiveNear = true
	for trial := 0; trial < 6; trial++ {
		n := 25 + rng.Intn(40)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		s := int32(rng.Intn(n))
		requireExact(t, g, s, p)
	}
	requireExact(t, graph.Cycle(45), 3, p)
	requireExact(t, graph.Grid(5, 9), 0, p)
}

func TestFlatLandmarkAblationStaysExact(t *testing.T) {
	p := testParams(13)
	p.FlatLandmarks = true
	requireExact(t, graph.Cycle(70), 0, p)
	rng := xrand.New(14)
	g := graph.CycleWithChords(rng, 60, 4)
	requireExact(t, g, 10, p)
}

func TestSoundnessAtPaperConstants(t *testing.T) {
	// With Boost = 1 on tiny graphs the sampling lemmas give no usable
	// guarantee, but soundness must hold regardless: every reported
	// length is >= the true replacement length, and never finite when
	// the truth is Inf.
	rng := xrand.New(15)
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(40)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		s := int32(rng.Intn(n))
		p := DefaultParams()
		p.Seed = uint64(trial) + 1
		got, _, err := Solve(g, s, p)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.SSRP(g, s)
		for tt := range got.Len {
			for i := range got.Len[tt] {
				gv, wv := got.Len[tt][i], want.Len[tt][i]
				if gv < wv {
					t.Fatalf("UNSOUND: trial %d s=%d t=%d i=%d: got %d < true %d",
						trial, s, tt, i, gv, wv)
				}
				if wv == rp.Inf && gv != rp.Inf {
					t.Fatalf("trial %d: finite answer %d where truth is Inf", trial, gv)
				}
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := graph.Cycle(80)
	_, stats, err := Solve(g, 0, testParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnionSize == 0 || len(stats.LevelSizes) == 0 {
		t.Fatal("landmark stats empty")
	}
	if stats.AuxNodes == 0 || stats.AuxArcs == 0 {
		t.Fatal("aux graph stats empty")
	}
	if stats.Queries == 0 {
		t.Fatal("no queries counted")
	}
	if stats.FarScans == 0 {
		t.Fatal("cycle with shrunk SuffixScale must produce far edges")
	}
}

func TestInvalidInputs(t *testing.T) {
	g := graph.Cycle(5)
	if _, _, err := Solve(g, -1, DefaultParams()); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := Solve(g, 5, DefaultParams()); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	bad := DefaultParams()
	bad.SampleBoost = 0
	if _, _, err := Solve(g, 0, bad); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad params error = %v", err)
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, _, err := Solve(empty, 0, DefaultParams()); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(44), 60, 5)
	p := testParams(17)
	a, _, err := Solve(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Solve(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := rp.Diff(a, b); d != "" {
		t.Fatalf("same seed, different answers: %s", d)
	}
}

func TestSmallNearPathExpansion(t *testing.T) {
	// The expanded §7.1 paths must be real walks: consecutive vertices
	// adjacent, starting at s, ending at t, avoiding e, with length
	// matching the reported value.
	rng := xrand.New(18)
	g := graph.RandomConnected(rng, 40, 100)
	sh, err := NewShared(g, []int32{0}, testParams(19))
	if err != nil {
		t.Fatal(err)
	}
	ps := sh.NewPerSource(0)
	ps.BuildSmallNear()
	checked := 0
	for tt := int32(1); tt < 40; tt++ {
		l := ps.Ts.Dist[tt]
		edges := ps.Ts.PathEdgesTo(tt)
		for i := 0; i < int(l); i++ {
			val := ps.Small.Value(tt, i)
			if val >= rp.Inf {
				continue
			}
			path := ps.Small.PathVertices(tt, i)
			if path == nil {
				t.Fatalf("finite value %d with nil path (t=%d i=%d)", val, tt, i)
			}
			if path[0] != 0 || path[len(path)-1] != tt {
				t.Fatalf("path endpoints %d..%d, want 0..%d", path[0], path[len(path)-1], tt)
			}
			if int32(len(path)-1) != val {
				t.Fatalf("path length %d != value %d", len(path)-1, val)
			}
			e := edges[i]
			eu, ev := g.EdgeEndpoints(int(e))
			for j := 0; j+1 < len(path); j++ {
				id, ok := g.EdgeID(int(path[j]), int(path[j+1]))
				if !ok {
					t.Fatalf("non-adjacent consecutive vertices %d,%d", path[j], path[j+1])
				}
				if id == e {
					t.Fatalf("path for (t=%d,i=%d) uses avoided edge {%d,%d}", tt, i, eu, ev)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestHighSigmaScaleStress(t *testing.T) {
	// Larger single-source instance, still exhaustively verified.
	rng := xrand.New(20)
	g := graph.RandomConnected(rng, 150, 400)
	requireExact(t, g, 75, testParams(21))
}
