package msrp

// Cross-checking property suite: the full public pipeline (MultiSource
// and the batched Oracle) against the brute-force oracle in
// internal/naive, for EVERY (source, target, avoided-edge) triple on
// small instances of the workload families the paper's analysis
// distinguishes. This is the exhaustive counterpart of the sampled
// spot checks in msrp_api_test.go.

import (
	"fmt"
	"testing"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// crossCheckFamilies returns the seeded small-n instances. Boosted
// options at these sizes make the randomized solvers exact, so the
// comparison against brute force demands equality, not just soundness.
func crossCheckFamilies() []struct {
	name string
	g    *graph.Graph
} {
	rng := xrand.New(20200616)
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"erdos-renyi-sparse", graph.RandomConnected(rng, 26, 40)},
		{"erdos-renyi-dense", graph.RandomConnected(rng, 18, 90)},
		{"grid-4x6", graph.Grid(4, 6)},
		{"path-with-chords", graph.PathWithChords(rng, 24, 6)},
		{"cycle-with-chords", graph.CycleWithChords(rng, 22, 4)},
		{"barbell", graph.Barbell(6, 5)},
	}
}

func crossCheckSources(n int) []int {
	uniq := make(map[int]bool)
	var sources []int
	for _, s := range []int{0, n / 3, 2 * n / 3} {
		if !uniq[s] {
			uniq[s] = true
			sources = append(sources, s)
		}
	}
	return sources
}

// TestCrossCheckMultiSource compares every MultiSource answer — every
// (source, target, path-edge) triple — with the delete-and-BFS brute
// force.
func TestCrossCheckMultiSource(t *testing.T) {
	for _, f := range crossCheckFamilies() {
		t.Run(f.name, func(t *testing.T) {
			g := WrapGraph(f.g)
			sources := crossCheckSources(f.g.NumVertices())
			results, err := MultiSource(g, sources, testOptions(99))
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range sources {
				want := naive.SSRP(f.g, int32(s))
				if d := rp.Diff(want, resultOf(results[i])); d != "" {
					t.Fatalf("source %d: %s", s, d)
				}
			}
		})
	}
}

// TestCrossCheckMultiSourcePaths is the provenance plane's exhaustive
// acceptance: for every graph family, at P ∈ {1, 2, 8}, on both solve
// schedules (pipelined and barrier), a TrackPaths solve must
//
//  1. report lengths bit-identical to the tracking-off solve (tracking
//     only observes, never steers), which the families' boosted
//     constants in turn pin to the brute-force optimum, and
//  2. expand EVERY finite answer into a machine-verified replacement
//     path: a real walk in G−e from s to t, avoiding e, of exactly the
//     reported (= naive-exact) length — and no path for NoPath answers.
func TestCrossCheckMultiSourcePaths(t *testing.T) {
	for _, f := range crossCheckFamilies() {
		t.Run(f.name, func(t *testing.T) {
			n := f.g.NumVertices()
			var sources []int32
			for _, s := range crossCheckSources(n) {
				sources = append(sources, int32(s))
			}
			wants := make([]*rp.Result, len(sources))
			for i, s := range sources {
				wants[i] = naive.SSRP(f.g, s)
			}
			for _, par := range []int{1, 2, 8} {
				for _, barrier := range []bool{false, true} {
					p := ssrp.DefaultParams()
					p.Seed = 99
					p.SampleBoost = 12
					p.SuffixScale = 0.25
					p.Parallelism = par
					p.BarrierPipeline = barrier
					plain, err := msrpcore.Solve(f.g, sources, p)
					if err != nil {
						t.Fatal(err)
					}
					p.TrackPaths = true
					sol, err := msrpcore.Solve(f.g, sources, p)
					if err != nil {
						t.Fatal(err)
					}
					for i, s := range sources {
						res := sol.Results[i]
						if d := rp.Diff(plain.Results[i], res); d != "" {
							t.Fatalf("P=%d barrier=%v source %d: tracking changed lengths: %s", par, barrier, s, d)
						}
						if d := rp.Diff(wants[i], res); d != "" {
							t.Fatalf("P=%d barrier=%v source %d: %s", par, barrier, s, d)
						}
						verifyResultPaths(t, f.g, sol.PerSource[i], res, par, barrier)
					}
				}
			}
		})
	}
}

// verifyResultPaths reconstructs every answer of one source and
// machine-verifies it against the reported length.
func verifyResultPaths(t *testing.T, g *graph.Graph, ps *ssrp.PerSource, res *rp.Result, par int, barrier bool) {
	t.Helper()
	verified, failures := rp.VerifyReconstructions(g, res, 1, ps.ReconstructPath)
	for _, f := range failures {
		t.Errorf("P=%d barrier=%v %s", par, barrier, f)
	}
	if len(failures) > 0 {
		t.FailNow()
	}
	if verified == 0 && res.NumQueries() > 0 {
		t.Fatalf("P=%d barrier=%v s=%d: nothing verified", par, barrier, res.Source)
	}
}

// TestCrossCheckOracleBatch builds the query list of every (source,
// target, avoided-edge) triple, answers it in one QueryBatch, and
// compares each answer with a from-scratch BFS that skips the edge.
func TestCrossCheckOracleBatch(t *testing.T) {
	for _, f := range crossCheckFamilies() {
		t.Run(f.name, func(t *testing.T) {
			g := WrapGraph(f.g)
			n := f.g.NumVertices()
			sources := crossCheckSources(n)
			oracle, err := NewOracle(g, sources, testOptions(100))
			if err != nil {
				t.Fatal(err)
			}

			var queries []Query
			for _, s := range sources {
				res := oracle.Result(s)
				if res == nil {
					t.Fatalf("no result for source %d", s)
				}
				for target := 0; target < n; target++ {
					path := res.PathTo(target)
					for i := 0; i+1 < len(path); i++ {
						queries = append(queries, Query{
							Source: s, Target: target,
							U: int(path[i]), V: int(path[i+1]),
						})
					}
				}
			}

			answers := oracle.QueryBatch(queries)
			if len(answers) != len(queries) {
				t.Fatalf("%d answers for %d queries", len(answers), len(queries))
			}
			for i, q := range queries {
				if answers[i].Err != nil {
					t.Fatalf("query %+v: %v", q, answers[i].Err)
				}
				e, ok := f.g.EdgeID(q.U, q.V)
				if !ok {
					t.Fatalf("query %+v references a missing edge", q)
				}
				want := naive.OnePair(f.g, int32(q.Source), int32(q.Target), e)
				got := answers[i].Length
				if got == NoPath {
					got = rp.Inf
				}
				if got != want {
					t.Fatalf("d(%d,%d,{%d,%d}) = %s, brute force %s",
						q.Source, q.Target, q.U, q.V, fmtTestLen(got), fmtTestLen(want))
				}
			}
		})
	}
}

// TestCrossCheckOracleLazyVsWarm: for every triple, a lazily built
// oracle and a Warm()-built oracle must agree at boosted constants
// (both construction paths are exact there).
func TestCrossCheckOracleLazyVsWarm(t *testing.T) {
	for _, f := range crossCheckFamilies() {
		t.Run(f.name, func(t *testing.T) {
			g := WrapGraph(f.g)
			n := f.g.NumVertices()
			sources := crossCheckSources(n)
			lazy, err := NewOracle(g, sources, testOptions(101))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := NewOracle(g, sources, testOptions(101))
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.Warm(); err != nil {
				t.Fatal(err)
			}
			if got, want := warm.CachedSources(), len(sources); got != want {
				t.Fatalf("Warm cached %d sources, want %d", got, want)
			}
			for _, s := range sources {
				lr, wr := lazy.Result(s), warm.Result(s)
				if d := rp.Diff(resultOf(lr), resultOf(wr)); d != "" {
					t.Fatalf("source %d: lazy vs warm: %s", s, d)
				}
			}
		})
	}
}

// resultOf unwraps the internal result for rp.Diff comparisons.
func resultOf(r *Result) *rp.Result { return r.res }

func fmtTestLen(v int32) string {
	if v == rp.Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}
